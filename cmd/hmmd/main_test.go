package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestSigtermDrainsInflight boots the real daemon loop, holds a slow
// request in flight, sends this process SIGTERM (caught by the
// daemon's signal.NotifyContext), and checks that the in-flight job
// completes with 200 before run returns.
func TestSigtermDrainsInflight(t *testing.T) {
	var stdout, stderr bytes.Buffer
	var mu sync.Mutex
	ready := make(chan string, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1"},
			lockedWriter{&mu, &stdout}, lockedWriter{&mu, &stderr}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	// Sanity: healthz and a quick matmul work.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz = %d", resp.StatusCode)
	}

	// A large request so it is genuinely in flight when the signal
	// lands; we poll the inflight gauge to be sure before signaling.
	status := make(chan int, 1)
	body := make(chan []byte, 1)
	go func() {
		resp, err := http.Post(base+"/v1/matmul", "application/json",
			strings.NewReader(`{"n": 1024, "p": 64, "verify": true}`))
		if err != nil {
			status <- -1
			body <- nil
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
		body <- data
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never became in-flight")
		}
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(data), "hmmd_inflight_jobs 1") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case s := <-status:
		data := <-body
		if s != 200 {
			t.Fatalf("in-flight request finished with %d: %s", s, data)
		}
		var mr struct {
			Algorithm string `json:"algorithm"`
			Verified  *bool  `json:"verified"`
		}
		if err := json.Unmarshal(data, &mr); err != nil {
			t.Fatal(err)
		}
		if mr.Verified == nil || !*mr.Verified {
			t.Error("drained job result not verified")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight request never finished")
	}

	select {
	case code := <-exited:
		if code != 0 {
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(stdout.String(), "drained, exiting") {
		t.Errorf("missing drain log:\n%s", stdout.String())
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &out, nil); code != 2 {
		t.Errorf("bad flag exit = %d, want 2", code)
	}
}

func TestListenFailure(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:1"}, &out, &out, nil); code != 1 {
		t.Errorf("bad addr exit = %d, want 1", code)
	}
	if out.Len() == 0 {
		t.Error("no error output")
	}
}

package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hypermm"
	"hypermm/internal/calibrate"
)

// TestCalibratedServing is the end-to-end calibration pipeline: run a
// real measurement sweep, fit a profile, write it to disk, boot the
// daemon with -calibration, and check that plans are marked calibrated
// with predictions that differ from the raw Table 2 model.
func TestCalibratedServing(t *testing.T) {
	sweep, err := calibrate.Run(calibrate.Spec{
		Ports: hypermm.OnePort, Ns: []int{16, 32}, Ps: []int{4, 16, 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := calibrate.Fit(sweep, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	data, err := profile.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	var mu sync.Mutex
	ready := make(chan string, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-calibration", path},
			lockedWriter{&mu, &stdout}, lockedWriter{&mu, &stderr}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	base := "http://" + addr

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, data
	}

	// /v1/calibration serves the loaded profile back.
	code, body := get("/v1/calibration")
	if code != 200 {
		t.Fatalf("/v1/calibration = %d: %s", code, body)
	}
	served, err := calibrate.Parse(body)
	if err != nil {
		t.Fatalf("served profile invalid: %v", err)
	}
	if served.TsEff != profile.TsEff || served.TwEff != profile.TwEff {
		t.Errorf("served profile (%g, %g) != written (%g, %g)",
			served.TsEff, served.TwEff, profile.TsEff, profile.TwEff)
	}

	// Plans are calibrated, and the calibrated prediction differs from
	// the preserved raw Table 2 one.
	code, body = get("/v1/plan?n=256&p=64")
	if code != 200 {
		t.Fatalf("/v1/plan = %d: %s", code, body)
	}
	var plan struct {
		Calibrated       bool    `json:"calibrated"`
		PredictedTime    float64 `json:"predicted_time"`
		UncalibratedTime float64 `json:"uncalibrated_time"`
	}
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatal(err)
	}
	if !plan.Calibrated {
		t.Errorf("plan not marked calibrated: %s", body)
	}
	if plan.UncalibratedTime == 0 || plan.PredictedTime == plan.UncalibratedTime {
		t.Errorf("calibrated prediction %g vs uncalibrated %g: want both set and different",
			plan.PredictedTime, plan.UncalibratedTime)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(string(body), "hmmd_calibration_loaded 1") {
		t.Error("metrics missing hmmd_calibration_loaded 1")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != 0 {
			mu.Lock()
			defer mu.Unlock()
			t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(stdout.String(), "calibration profile") {
		t.Errorf("startup log missing calibration line:\n%s", stdout.String())
	}
}

func TestCalibrationFlagRejectsBadProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"-calibration", path}, &out, &out, nil); code != 1 {
		t.Errorf("bad profile exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "version") {
		t.Errorf("error output does not mention the version: %s", out.String())
	}
	if code := run([]string{"-calibration", filepath.Join(t.TempDir(), "missing.json")}, &out, &out, nil); code != 1 {
		t.Error("missing profile file did not fail startup")
	}
}

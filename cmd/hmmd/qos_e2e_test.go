package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// bootDaemon starts hmmd via run() with the given extra flags and
// returns its base URL plus a shutdown func that SIGTERMs it and
// asserts a clean exit.
func bootDaemon(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	var mu sync.Mutex
	ready := make(chan string, 1)
	exited := make(chan int, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, extra...)
	go func() {
		exited <- run(args, lockedWriter{&mu, &stdout}, lockedWriter{&mu, &stderr}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not start")
	}
	return "http://" + addr, func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-exited:
			if code != 0 {
				mu.Lock()
				defer mu.Unlock()
				t.Fatalf("run exited %d\nstdout: %s\nstderr: %s",
					code, stdout.String(), stderr.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not exit after SIGTERM")
		}
	}
}

func doMatmul(t *testing.T, base string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/matmul",
		strings.NewReader(`{"n": 64, "p": 64}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

// TestQoSServingE2E boots the daemon with -qos testdata/qos.json and
// exercises the whole tenant path over HTTP: header resolution, quota
// debiting with Retry-After, the /v1/qos policy endpoint and the
// hmmd_qos_* metric family.
func TestQoSServingE2E(t *testing.T) {
	base, shutdown := bootDaemon(t, "-qos", filepath.Join("testdata", "qos.json"))

	// A named tenant with no quota serves normally.
	resp, body := doMatmul(t, base, map[string]string{"X-Tenant": "paced"})
	if resp.StatusCode != 200 {
		t.Fatalf("paced matmul = %d: %s", resp.StatusCode, body)
	}

	// acme's bucket (burst 1, negligible refill) admits one job into
	// overdraft, then refuses with 429 + Retry-After.
	resp, body = doMatmul(t, base, map[string]string{"X-API-Key": "k-acme"})
	if resp.StatusCode != 200 {
		t.Fatalf("first acme matmul = %d: %s", resp.StatusCode, body)
	}
	resp, body = doMatmul(t, base, map[string]string{"X-API-Key": "k-acme"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second acme matmul = %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("quota 429 Retry-After = %q, want a positive number of seconds", ra)
	}
	if !strings.Contains(string(body), "quota") {
		t.Errorf("quota 429 body does not say quota: %s", body)
	}

	// The metric family reports per-tenant counters.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`hmmd_qos_jobs_total{tenant="acme"} 1`,
		`hmmd_qos_quota_rejects_total{tenant="acme"} 1`,
		`hmmd_qos_jobs_total{tenant="paced"} 1`,
		`hmmd_qos_queue_depth{tenant=`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /v1/qos serves the policy and live stats.
	qresp, err := http.Get(base + "/v1/qos")
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != 200 {
		t.Fatalf("/v1/qos = %d: %s", qresp.StatusCode, qbody)
	}
	var qos struct {
		Config struct {
			Version int `json:"version"`
		} `json:"config"`
		Tenants []struct {
			Name         string
			Jobs         int64
			QuotaRejects int64
			Debt         float64
		} `json:"tenants"`
	}
	if err := json.Unmarshal(qbody, &qos); err != nil {
		t.Fatalf("/v1/qos not JSON: %v\n%s", err, qbody)
	}
	if qos.Config.Version != 1 {
		t.Errorf("/v1/qos config version = %d, want 1", qos.Config.Version)
	}
	found := false
	for _, ts := range qos.Tenants {
		if ts.Name == "acme" {
			found = true
			if ts.QuotaRejects != 1 || ts.Debt <= 0 {
				t.Errorf("acme stats = %+v, want 1 quota reject and positive debt", ts)
			}
		}
	}
	if !found {
		t.Error("/v1/qos has no acme tenant")
	}

	shutdown()
}

// TestQoSEndpointAbsentWithoutFlag: without -qos the daemon serves
// single-tenant FIFO and /v1/qos is a 404, so operators can tell at a
// glance whether a policy is loaded.
func TestQoSEndpointAbsentWithoutFlag(t *testing.T) {
	base, shutdown := bootDaemon(t)
	resp, err := http.Get(base + "/v1/qos")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/qos without -qos = %d, want 404", resp.StatusCode)
	}
	shutdown()
}

// TestBadQoSConfig: an unreadable or invalid -qos file must refuse to
// start with exit 1, never serve with a half-loaded policy.
func TestBadQoSConfig(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-qos", "/nonexistent/qos.json"}, &out, &out, nil); code != 1 {
		t.Errorf("missing qos config exit = %d, want 1", code)
	}
	if out.Len() == 0 {
		t.Error("no error output for missing qos config")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1, "tenants": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-qos", bad}, &out, &out, nil); code != 1 {
		t.Errorf("empty-tenant qos config exit = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "tenants") {
		t.Errorf("qos error not reported:\n%s", out.String())
	}
}

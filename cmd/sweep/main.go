// Command sweep measures every runnable algorithm across a sweep of
// machine sizes (fixed n) or matrix sizes (fixed p), printing measured
// simulated times next to the analytic Table 2 predictions — the data
// behind the paper's Section 5 crossover claims.
//
// Usage:
//
//	sweep -axis p -n 256 -ts 150 -tw 3            # p = 4..4096
//	sweep -axis n -p 64 -ports multi              # n sweep on 64 nodes
package main

import (
	"flag"
	"fmt"
	"os"

	"hypermm"
)

func main() {
	var (
		axis  = flag.String("axis", "p", "sweep axis: p (machine size) or n (matrix size)")
		n     = flag.Int("n", 256, "matrix size (fixed when sweeping p)")
		p     = flag.Int("p", 64, "processors (fixed when sweeping n)")
		ports = flag.String("ports", "one", "port model: one or multi")
		ts    = flag.Float64("ts", 150, "start-up cost t_s")
		tw    = flag.Float64("tw", 3, "per-word cost t_w")
	)
	flag.Parse()

	pm := hypermm.OnePort
	if *ports == "multi" || *ports == "multiport" || *ports == "multi-port" {
		pm = hypermm.MultiPort
	}

	algs := []hypermm.Algorithm{
		hypermm.Simple, hypermm.Cannon, hypermm.HJE, hypermm.Berntsen,
		hypermm.DNS, hypermm.ThreeDiag, hypermm.AllTrans, hypermm.ThreeAll,
	}

	switch *axis {
	case "p":
		fmt.Printf("Communication time sweep over p (n=%d, %v, t_s=%g, t_w=%g)\n", *n, pm, *ts, *tw)
		fmt.Printf("  cells: measured/analytic; '-' = not runnable at that size\n")
		header(algs)
		for _, pp := range []int{4, 8, 16, 64, 256, 512, 4096} {
			row(fmt.Sprintf("p=%d", pp), algs, pp, *n, pm, *ts, *tw)
		}
	case "n":
		fmt.Printf("Communication time sweep over n (p=%d, %v, t_s=%g, t_w=%g)\n", *p, pm, *ts, *tw)
		header(algs)
		for _, nn := range []int{32, 64, 128, 256, 512} {
			row(fmt.Sprintf("n=%d", nn), algs, *p, nn, pm, *ts, *tw)
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown axis %q\n", *axis)
		os.Exit(1)
	}
}

func header(algs []hypermm.Algorithm) {
	fmt.Printf("%-8s", "")
	for _, a := range algs {
		fmt.Printf(" %-21s", a.Name())
	}
	fmt.Println()
}

func row(label string, algs []hypermm.Algorithm, p, n int, pm hypermm.PortModel, ts, tw float64) {
	fmt.Printf("%-8s", label)
	A := hypermm.RandomMatrix(n, n, 3)
	B := hypermm.RandomMatrix(n, n, 4)
	for _, alg := range algs {
		analytic, okA := hypermm.CommTime(alg, float64(n), float64(p), ts, tw, pm)
		res, err := hypermm.Run(alg, hypermm.Config{P: p, Ports: pm, Ts: ts, Tw: tw, Tc: 0}, A, B)
		switch {
		case err == nil && okA:
			fmt.Printf(" %9.3g/%-11.3g", res.Elapsed, analytic)
		case err == nil:
			fmt.Printf(" %9.3g/%-11s", res.Elapsed, "n/a")
		default:
			fmt.Printf(" %-21s", "-")
		}
	}
	fmt.Println()
}

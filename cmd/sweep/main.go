// Command sweep measures every runnable algorithm across a sweep of
// machine sizes (fixed n) or matrix sizes (fixed p), printing measured
// simulated times next to the analytic Table 2 predictions — the data
// behind the paper's Section 5 crossover claims.
//
// Rows are evaluated concurrently over a worker pool (each cell is an
// independent emulation with its own machine) and printed in sweep
// order, so the output bytes are identical to a serial run.
//
// Usage:
//
//	sweep -axis p -n 256 -ts 150 -tw 3            # p = 4..4096
//	sweep -axis n -p 64 -ports multi              # n sweep on 64 nodes
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"hypermm"
)

func main() {
	var (
		axis  = flag.String("axis", "p", "sweep axis: p (machine size) or n (matrix size)")
		n     = flag.Int("n", 256, "matrix size (fixed when sweeping p)")
		p     = flag.Int("p", 64, "processors (fixed when sweeping n)")
		ports = flag.String("ports", "one", "port model: one or multi")
		ts    = flag.Float64("ts", 150, "start-up cost t_s")
		tw    = flag.Float64("tw", 3, "per-word cost t_w")
	)
	flag.Parse()

	pm := hypermm.OnePort
	if *ports == "multi" || *ports == "multiport" || *ports == "multi-port" {
		pm = hypermm.MultiPort
	}

	algs := []hypermm.Algorithm{
		hypermm.Simple, hypermm.Cannon, hypermm.HJE, hypermm.Berntsen,
		hypermm.DNS, hypermm.ThreeDiag, hypermm.AllTrans, hypermm.ThreeAll,
	}

	type point struct {
		label string
		p, n  int
	}
	var points []point
	switch *axis {
	case "p":
		fmt.Printf("Communication time sweep over p (n=%d, %v, t_s=%g, t_w=%g)\n", *n, pm, *ts, *tw)
		fmt.Printf("  cells: measured/analytic; '-' = not runnable at that size\n")
		for _, pp := range []int{4, 8, 16, 64, 256, 512, 4096} {
			points = append(points, point{fmt.Sprintf("p=%d", pp), pp, *n})
		}
	case "n":
		fmt.Printf("Communication time sweep over n (p=%d, %v, t_s=%g, t_w=%g)\n", *p, pm, *ts, *tw)
		for _, nn := range []int{32, 64, 128, 256, 512} {
			points = append(points, point{fmt.Sprintf("n=%d", nn), *p, nn})
		}
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown axis %q\n", *axis)
		os.Exit(1)
	}
	header(algs)

	// Evaluate rows concurrently, print in sweep order: each row is a
	// fully independent set of emulations, and assembling its text off
	// to the side keeps the output bytes identical to a serial sweep.
	rows := make([]string, len(points))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, pt := range points {
		wg.Add(1)
		go func(i int, pt point) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i] = row(pt.label, algs, pt.p, pt.n, pm, *ts, *tw)
		}(i, pt)
	}
	wg.Wait()
	for _, r := range rows {
		fmt.Print(r)
	}
}

func header(algs []hypermm.Algorithm) {
	fmt.Printf("%-8s", "")
	for _, a := range algs {
		fmt.Printf(" %-21s", a.Name())
	}
	fmt.Println()
}

func row(label string, algs []hypermm.Algorithm, p, n int, pm hypermm.PortModel, ts, tw float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", label)
	A := hypermm.RandomMatrix(n, n, 3)
	B := hypermm.RandomMatrix(n, n, 4)
	for _, alg := range algs {
		analytic, okA := hypermm.CommTime(alg, float64(n), float64(p), ts, tw, pm)
		res, err := hypermm.Run(alg, hypermm.Config{P: p, Ports: pm, Ts: ts, Tw: tw, Tc: 0}, A, B)
		switch {
		case err == nil && okA:
			fmt.Fprintf(&sb, " %9.3g/%-11.3g", res.Elapsed, analytic)
		case err == nil:
			fmt.Fprintf(&sb, " %9.3g/%-11s", res.Elapsed, "n/a")
		default:
			fmt.Fprintf(&sb, " %-21s", "-")
		}
	}
	sb.WriteByte('\n')
	return sb.String()
}

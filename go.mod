module hypermm

go 1.22
